#pragma once
// Spectral machinery of the vorticity solver, independent of how the
// distributed transpose is carried out. The time stepper is a template over
// a Transpose coroutine functor so the MPI and Data Vortex ports share every
// line of numerics.
//
// Layout convention (distributed by rows over P ranks):
//   real space   R(y, x): rows indexed by y
//   spectral     S(kx, ky): rows indexed by kx (the "transposed" layout),
// so each 2-D transform is: local row FFTs, one distributed transpose,
// local row FFTs — exactly one transpose per 2-D FFT.

#include <cmath>
#include <numbers>
#include <vector>

#include "kernels/fft.hpp"
#include "runtime/node.hpp"

namespace dvx::apps::vort_detail {

using kernels::Complex;

/// Signed wavenumber of row/column index i on an n-point periodic grid.
constexpr std::int64_t wavenumber(std::int64_t i, std::int64_t n) {
  return i <= n / 2 ? i : i - n;
}

/// Kelvin-Helmholtz initial vorticity at grid point (x index i, y index j).
double kh_initial(std::int64_t i, std::int64_t j, std::int64_t n, double delta,
                  double eps);

/// This rank's rows of the initial real-space vorticity (rows = y indices).
std::vector<Complex> initial_rows(int rank, int ranks, std::int64_t n, double delta,
                                  double eps);

/// Local row FFTs (row length n), real compute + flop charging.
sim::Coro<void> fft_local_rows(runtime::NodeCtx& node, std::vector<Complex>& data,
                               std::int64_t n, bool inverse);

struct SpectralSums {
  double energy = 0.0;
  double enstrophy = 0.0;
  double abs_sum = 0.0;
};

/// Energy/enstrophy partial sums over this rank's spectral rows
/// (rows = kx indices starting at row0).
SpectralSums spectral_sums(const std::vector<Complex>& s, std::int64_t row0,
                           std::int64_t n);

/// RHS in spectral space: given local rows of omega_hat, produce the local
/// rows of N_hat = -FFT(u * dω/dx + v * dω/dy), dealiased (2/3 rule).
/// `transpose` is a coroutine functor (data, rows, cols) -> Coro<vector>.
template <typename TransposeFn>
sim::Coro<std::vector<Complex>> rhs(runtime::NodeCtx& node, TransposeFn&& transpose,
                                    const std::vector<Complex>& omega_hat,
                                    std::int64_t row0, std::int64_t n, int ranks) {
  const std::int64_t rows_local = n / ranks;

  // Spectral derivatives and velocities from the streamfunction.
  std::vector<Complex> u_hat(omega_hat.size()), v_hat(omega_hat.size()),
      wx_hat(omega_hat.size()), wy_hat(omega_hat.size());
  for (std::int64_t r = 0; r < rows_local; ++r) {
    const double kx = static_cast<double>(wavenumber(row0 + r, n));
    for (std::int64_t c = 0; c < n; ++c) {
      const double ky = static_cast<double>(wavenumber(c, n));
      const double k2 = kx * kx + ky * ky;
      const auto idx = static_cast<std::size_t>(r * n + c);
      const Complex w = omega_hat[idx];
      const Complex psi = k2 > 0.0 ? w / k2 : Complex(0.0, 0.0);
      const Complex i(0.0, 1.0);
      u_hat[idx] = i * ky * psi;    // u = d(psi)/dy
      v_hat[idx] = -i * kx * psi;   // v = -d(psi)/dx
      wx_hat[idx] = i * kx * w;
      wy_hat[idx] = i * ky * w;
    }
  }
  co_await node.compute_flops(30.0 * static_cast<double>(omega_hat.size()));

  // Four inverse 2-D FFTs: spectral (kx, ky) -> real (y, x).
  auto to_real = [&](std::vector<Complex> s) -> sim::Coro<std::vector<Complex>> {
    co_await fft_local_rows(node, s, n, /*inverse=*/true);   // over ky
    s = co_await transpose(std::move(s), n, n);              // (kx,y) -> (y,kx)
    co_await fft_local_rows(node, s, n, /*inverse=*/true);   // over kx
    co_return s;
  };
  auto u = co_await to_real(std::move(u_hat));
  auto v = co_await to_real(std::move(v_hat));
  auto wx = co_await to_real(std::move(wx_hat));
  auto wy = co_await to_real(std::move(wy_hat));

  // Nonlinear term in real space.
  std::vector<Complex> nl(u.size());
  for (std::size_t idx = 0; idx < nl.size(); ++idx) {
    nl[idx] = -(u[idx].real() * wx[idx].real() + v[idx].real() * wy[idx].real());
  }
  co_await node.compute_flops(4.0 * static_cast<double>(nl.size()));

  // One forward 2-D FFT: real (y, x) -> spectral (kx, ky).
  co_await fft_local_rows(node, nl, n, /*inverse=*/false);  // over x -> (y, kx)
  nl = co_await transpose(std::move(nl), n, n);             // -> (kx, y)
  co_await fft_local_rows(node, nl, n, /*inverse=*/false);  // over y -> (kx, ky)
  // Scale: two length-n unnormalized forward FFTs vs the inverse pair's 1/n
  // each — the round trip is self-consistent because every forward here is
  // matched by an inverse in to_real.

  // Dealias with the 2/3 rule.
  const std::int64_t kmax = n / 3;
  for (std::int64_t r = 0; r < rows_local; ++r) {
    const auto kx = wavenumber(row0 + r, n);
    for (std::int64_t c = 0; c < n; ++c) {
      const auto ky = wavenumber(c, n);
      if (std::abs(kx) > kmax || std::abs(ky) > kmax) {
        nl[static_cast<std::size_t>(r * n + c)] = Complex(0.0, 0.0);
      }
    }
  }
  co_return nl;
}

}  // namespace dvx::apps::vort_detail
