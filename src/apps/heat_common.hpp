#pragma once
// Shared pieces of the heat-equation implementations: the 3-D block
// decomposition, deterministic initial condition, and the serial reference.

#include <array>
#include <cmath>
#include <vector>

#include "apps/heat.hpp"
#include "kernels/stencil.hpp"

namespace dvx::apps::heat_detail {

using kernels::HaloGrid3;

/// One rank's placement in the (px, py, pz) process grid.
struct Block {
  std::array<int, 3> pgrid{};
  std::array<int, 3> coords{};
  std::array<std::int64_t, 3> lo{};  // global index of first interior cell
  std::array<std::int64_t, 3> n{};   // interior extents
  /// Neighbor rank per face (0/1=-x/+x, ...), -1 at a domain boundary.
  std::array<int, 6> neighbor{};
};

inline Block block_for(int rank, int ranks, const HeatParams& hp) {
  Block b;
  b.pgrid = kernels::process_grid_3d(ranks);
  const int px = b.pgrid[0], py = b.pgrid[1];
  b.coords = {rank % px, (rank / px) % py, rank / (px * py)};
  const std::array<std::int64_t, 3> global = {hp.global_nx, hp.global_ny, hp.global_nz};
  for (int d = 0; d < 3; ++d) {
    const auto [g0, g1] = kernels::block_range(global[static_cast<std::size_t>(d)],
                                               b.pgrid[static_cast<std::size_t>(d)],
                                               b.coords[static_cast<std::size_t>(d)]);
    b.lo[static_cast<std::size_t>(d)] = g0;
    b.n[static_cast<std::size_t>(d)] = g1 - g0;
  }
  auto rank_of = [&](int cx, int cy, int cz) {
    return (cz * py + cy) * px + cx;
  };
  const auto [cx, cy, cz] = b.coords;
  b.neighbor[0] = cx > 0 ? rank_of(cx - 1, cy, cz) : -1;
  b.neighbor[1] = cx + 1 < b.pgrid[0] ? rank_of(cx + 1, cy, cz) : -1;
  b.neighbor[2] = cy > 0 ? rank_of(cx, cy - 1, cz) : -1;
  b.neighbor[3] = cy + 1 < b.pgrid[1] ? rank_of(cx, cy + 1, cz) : -1;
  b.neighbor[4] = cz > 0 ? rank_of(cx, cy, cz - 1) : -1;
  b.neighbor[5] = cz + 1 < b.pgrid[2] ? rank_of(cx, cy, cz + 1) : -1;
  return b;
}

/// Initial temperature: a smooth Gaussian blob off the domain center.
inline double initial_value(std::int64_t i, std::int64_t j, std::int64_t k,
                            const HeatParams& hp) {
  const double x = (static_cast<double>(i) + 0.5) / hp.global_nx - 0.4;
  const double y = (static_cast<double>(j) + 0.5) / hp.global_ny - 0.55;
  const double z = (static_cast<double>(k) + 0.5) / hp.global_nz - 0.5;
  return 100.0 * std::exp(-18.0 * (x * x + y * y + z * z));
}

inline void fill_block(HaloGrid3& g, const Block& b, const HeatParams& hp) {
  for (std::int64_t k = 1; k <= b.n[2]; ++k) {
    for (std::int64_t j = 1; j <= b.n[1]; ++j) {
      for (std::int64_t i = 1; i <= b.n[0]; ++i) {
        g.at(static_cast<int>(i), static_cast<int>(j), static_cast<int>(k)) =
            initial_value(b.lo[0] + i - 1, b.lo[1] + j - 1, b.lo[2] + k - 1, hp);
      }
    }
  }
}

inline double block_sum(const HaloGrid3& g, const Block& b) {
  double s = 0.0;
  for (std::int64_t k = 1; k <= b.n[2]; ++k) {
    for (std::int64_t j = 1; j <= b.n[1]; ++j) {
      for (std::int64_t i = 1; i <= b.n[0]; ++i) {
        s += g.at(static_cast<int>(i), static_cast<int>(j), static_cast<int>(k));
      }
    }
  }
  return s;
}

/// Full-domain serial solve (verification reference).
std::vector<double> serial_reference(const HeatParams& hp);

/// Max |block - reference| over a rank's interior.
double block_vs_reference(const HaloGrid3& g, const Block& b, const HeatParams& hp,
                          const std::vector<double>& ref);

}  // namespace dvx::apps::heat_detail
