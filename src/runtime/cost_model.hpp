#pragma once
// Compute-time cost model for the simulated cluster nodes.
//
// The testbed nodes are dual Intel E5-2623v3 (Haswell-EP, 2 sockets x 4
// cores x 2 threads, 3.0 GHz) with 160 GB across two NUMA domains (§IV).
// Applications in this reproduction execute their numerics for real (so
// results are verifiable) but *charge virtual time* through this model, so
// simulated performance is deterministic and independent of the machine the
// simulation happens to run on.
//
// Three traffic classes capture what the workloads stress:
//   * flops        — arithmetic throughput (multicore, modestly vectorized)
//   * stream bytes — regular, prefetchable memory traffic
//   * random access— dependent irregular accesses (GUPS-style), limited by
//                    DRAM latency over the achievable memory-level
//                    parallelism of the 8 cores / 16 threads

#include "sim/time.hpp"

namespace dvx::runtime {

struct CostParams {
  int cores_per_node = 8;
  /// Sustained multicore arithmetic rate (not peak AVX FMA: the paper's
  /// kernels are memory/latency-bound codes compiled with gcc 4.9).
  double flops_per_sec = 2.4e10;
  /// Sustained streaming bandwidth across the two sockets.
  double stream_bytes_per_sec = 5.0e10;
  /// DRAM random-access latency.
  sim::Duration random_access_latency = sim::ns(95);
  /// Average outstanding misses sustained across threads (MLP).
  double random_mlp = 8.0;
};

class CostModel {
 public:
  explicit CostModel(CostParams params = {}) : params_(params) {}

  const CostParams& params() const noexcept { return params_; }

  /// Virtual time to execute `n` floating-point operations.
  sim::Duration flops(double n) const {
    return from_rate(n, params_.flops_per_sec);
  }

  /// Virtual time to stream `n` bytes through the memory system.
  sim::Duration stream_bytes(double n) const {
    return from_rate(n, params_.stream_bytes_per_sec);
  }

  /// Virtual time for `n` dependent random memory accesses.
  sim::Duration random_accesses(double n) const {
    const double per = static_cast<double>(params_.random_access_latency) /
                       params_.random_mlp;
    return static_cast<sim::Duration>(n * per);
  }

 private:
  static sim::Duration from_rate(double n, double per_sec) {
    if (n <= 0) return 0;
    return static_cast<sim::Duration>(n / per_sec *
                                      static_cast<double>(sim::kSecond));
  }

  CostParams params_;
};

}  // namespace dvx::runtime
