#pragma once
// The simulated test cluster (paper §IV): N nodes, each carrying BOTH a
// Data Vortex VIC and an FDR InfiniBand HCA, exactly like the evaluated
// 32-node system. A Cluster builds a fresh deterministic world per run and
// executes one coroutine per rank against either network.

#include <functional>
#include <memory>
#include <vector>

#include "dvapi/context.hpp"
#include "ib/topology.hpp"
#include "mpi/comm.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/node.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "torus/fabric.hpp"
#include "vic/vic.hpp"

namespace dvx::runtime {

/// Which net::Interconnect run_mpi builds. kIb is the paper's baseline
/// fat-tree; kTorus is the APEnet+-style 3D torus (ROADMAP item 4).
enum class MpiFabric { kIb, kTorus };

/// Canonical backend id for check/obs context and experiment records:
/// "mpi" for the InfiniBand fat-tree (also accepted as "mpi-ib" at the
/// CLI), "mpi-torus" for the torus.
const char* to_string(MpiFabric fabric) noexcept;

struct ClusterConfig {
  int nodes = 32;
  vic::DvFabricParams dv{};
  dvapi::DvApiParams dvapi{};
  ib::IbParams ib{};
  torus::TorusParams torus{};
  MpiFabric mpi_fabric = MpiFabric::kIb;
  mpi::MpiParams mpi{};
  CostParams cost{};
  bool trace = false;  ///< record Extrae-style state/message traces
  /// Worker threads for the engine's sharded execution mode (0 = process
  /// default, see default_engine_threads()). The cluster partitions its
  /// fabric across min(threads, nodes) shards (DESIGN.md §15). Pure
  /// execution parallelism: results are byte-identical at any value.
  int engine_threads = 0;
};

/// Resolved execution plan for one cluster run: how many shards the fabric
/// is partitioned into, how many worker threads drive them, and the
/// conservative window bound. A pure function of (ClusterConfig, fabric
/// lookahead) — see Cluster::resolve_sharding.
struct ShardPlan {
  int shards = 1;
  int threads = 1;
  sim::Duration lookahead = 0;
  bool windowed = false;
};

/// Process-wide default for ClusterConfig::engine_threads == 0: the
/// `--engine-threads` CLI value when set, else the DVX_ENGINE_THREADS
/// environment variable, else 1.
int default_engine_threads();
/// Overrides the process default (<= 0 restores env/1 resolution).
void set_default_engine_threads(int threads);

struct RunResult {
  sim::Time finished;       ///< virtual time when the last rank finished
  sim::Duration roi;        ///< max(roi_end) - min(roi_begin) over ranks
  double roi_seconds() const { return sim::to_seconds(roi); }
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  const ClusterConfig& config() const noexcept { return config_; }
  int nodes() const noexcept { return config_.nodes; }
  sim::Tracer& tracer() noexcept { return tracer_; }

  using DvProgram = std::function<sim::Coro<void>(dvapi::DvContext&, NodeCtx&)>;
  using MpiProgram = std::function<sim::Coro<void>(mpi::Comm, NodeCtx&)>;

  /// Runs one Data Vortex program per rank on a fresh fabric.
  /// Throws if any rank fails; reports deadlock via std::logic_error.
  RunResult run_dv(const DvProgram& program);

  /// Runs one MPI-over-InfiniBand program per rank on a fresh fabric.
  RunResult run_mpi(const MpiProgram& program);

  /// The execution plan a cluster with this config uses for a fabric with
  /// the given conservative lookahead bound: threads from the config (else
  /// the process default), shards = min(threads, nodes), windowed whenever
  /// the bound is positive. Cluster runs are windowed even at shards == 1,
  /// so every shard count shares one resolution semantics and sweeps are
  /// byte-identical across --engine-threads values (DESIGN.md §15).
  static ShardPlan resolve_sharding(const ClusterConfig& config,
                                    sim::Duration lookahead);

  /// Deterministic node -> shard map: contiguous balanced blocks, node r on
  /// shard floor(r * shards / nodes). A pure function of its arguments —
  /// every shard owns at least one node when shards <= nodes.
  static std::vector<int> shard_map(int nodes, int shards);

 private:
  ClusterConfig config_;
  sim::Tracer tracer_;
};

}  // namespace dvx::runtime
