#pragma once
// Calibration reference points taken directly from the paper. The model
// parameters that *encode* these numbers live next to their components
// (vic::PcieParams, dvnet::FabricParams, ib::IbParams, mpi::MpiParams,
// runtime::CostParams); this header collects the paper-quoted targets the
// benches and tests check against.

namespace dvx::runtime::paper {

/// §V: "the nominal peak bandwidth (4.4 GB/s)" of a Data Vortex port.
inline constexpr double kDvPeakBw = 4.4e9;
/// §V: "the Infiniband nominal peak bandwidth (6.8 GB/s)".
inline constexpr double kIbPeakBw = 6.8e9;
/// §V: "the Data Vortex implementation achieves 99.4% of the peak
/// performance when transferring 256k words".
inline constexpr double kDvPeakFraction256k = 0.994;
/// §V: "the Infiniband network only achieves about 72% of the peak".
inline constexpr double kIbPeakFraction256k = 0.72;
/// §V: direct writes are "limited by the PCIe lane read bandwidth (500
/// MB/s, only one lane is used)".
inline constexpr double kPcieDirectWriteBw = 0.5e9;
/// §VII / Fig. 9: measured application speedups DV vs MPI-over-IB.
inline constexpr double kSnapSpeedup = 1.19;
inline constexpr double kVorticitySpeedup = 2.46;
inline constexpr double kHeatSpeedup = 3.41;
/// §IV: evaluated node counts.
inline constexpr int kMaxNodes = 32;
/// §VI: GUPS aggregation rule — "the user is allowed to buffer at most
/// 1,024 accesses".
inline constexpr int kGupsBufferLimit = 1024;
/// §VI: FFT problem size used by the paper (2^33 points); this reproduction
/// defaults to smaller sizes but keeps the weak-scaling structure.
inline constexpr int kPaperFftLogSize = 33;
/// §VI: Graph500 runs "64 searches starting from random keys".
inline constexpr int kBfsSearches = 64;

}  // namespace dvx::runtime::paper
