#include "runtime/cluster.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "check/check.hpp"
#include "obs/collector.hpp"
#include "runtime/report.hpp"

namespace dvx::runtime {

namespace {
int g_default_engine_threads = 0;  // 0 = fall back to env / 1
}  // namespace

int default_engine_threads() {
  if (g_default_engine_threads > 0) return g_default_engine_threads;
  if (const char* env = std::getenv("DVX_ENGINE_THREADS")) {
    try {
      const int n = std::stoi(env);
      if (n > 0) return n;
    } catch (const std::exception&) {
      // fall through: a malformed value means "unset"
    }
  }
  return 1;
}

void set_default_engine_threads(int threads) {
  g_default_engine_threads = threads > 0 ? threads : 0;
}

const char* to_string(MpiFabric fabric) noexcept {
  switch (fabric) {
    case MpiFabric::kIb:
      return "mpi";
    case MpiFabric::kTorus:
      return "mpi-torus";
  }
  return "mpi";  // unreachable; keeps -Wreturn-type quiet
}

Cluster::Cluster(ClusterConfig config) : config_(config), tracer_(config.trace) {
  if (config_.nodes <= 0) throw std::invalid_argument("Cluster: nodes must be positive");
  // Invariant violations in any simulated run report uniformly (structured
  // text + one JSON line on stderr) before aborting the run.
  install_check_report_handler();
}

namespace {

RunResult collect(sim::Engine& engine, std::deque<NodeCtx>& ctxs) {
  const sim::Time finished = engine.run();
  if (!engine.all_done()) {
    throw std::logic_error("Cluster: a rank never finished (deadlock?)");
  }
  sim::Time b = ctxs.front().roi_begin_time();
  sim::Time e = ctxs.front().roi_end_time();
  for (const auto& c : ctxs) {
    b = std::min(b, c.roi_begin_time());
    e = std::max(e, c.roi_end_time());
  }
  // The engine sits below dvx_obs in the library stack, so its diagnostics
  // are harvested here rather than self-attached.
  if (obs::Registry* m = obs::metrics()) {
    m->counter("sim.engine.events")->add(engine.events_processed());
    // The per-shard max queue depth depends on how nodes were laid out
    // across shards, so windowed (partitioned) runs must not export it:
    // metrics snapshots are byte-identical at any --engine-threads value.
    if (!engine.sharding().windowed) {
      m->gauge("sim.engine.queue_depth")
          ->sample(static_cast<double>(engine.max_queue_depth()));
    }
    // The conservative window bound, for sanity-checking sharded runs. The
    // thread count is deliberately NOT exported, for the same reason.
    m->gauge("sim.engine.lookahead_ps")
        ->sample(static_cast<double>(engine.sharding().lookahead));
  }
  return RunResult{finished, e > b ? e - b : 0};
}

/// Turns the tracer on for the duration of one run when the ambient obs
/// collector asked for a trace, and hands the collector only the records
/// this run appended (a point may run the cluster several times).
class TraceCapture {
 public:
  explicit TraceCapture(sim::Tracer& tracer)
      : tracer_(tracer), was_enabled_(tracer.enabled()), mark_(tracer.mark()) {
    if (obs::trace_wanted()) tracer_.set_enabled(true);
  }
  ~TraceCapture() {
    obs::absorb_trace(tracer_, mark_);
    tracer_.set_enabled(was_enabled_);
  }
  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  sim::Tracer* tracer_or_null() noexcept {
    return tracer_.enabled() ? &tracer_ : nullptr;
  }

 private:
  sim::Tracer& tracer_;
  bool was_enabled_;
  sim::TraceMark mark_;
};

/// One stderr line per unique execution plan (satellite of ISSUE 10: the
/// old configure_single_shard silently clamped every run to one shard).
/// Deliberately NOT a metric — the plan depends on --engine-threads, and
/// metrics snapshots must not.
void report_shard_plan(const ClusterConfig& config, const ShardPlan& plan) {
  std::ostringstream os;
  os << "dvx: cluster sharding: nodes=" << config.nodes
     << " shards=" << plan.shards << " threads=" << plan.threads
     << " lookahead_ps=" << plan.lookahead
     << (plan.windowed ? " windowed" : " serial");
  static std::mutex mu;
  static std::set<std::string>* seen = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(mu);
  if (seen->insert(os.str()).second) std::cerr << os.str() << "\n";
}

/// Applies the resolved plan to a fresh engine and reports it.
ShardPlan apply_sharding(sim::Engine& engine, const ClusterConfig& config,
                         sim::Duration lookahead) {
  const ShardPlan plan = Cluster::resolve_sharding(config, lookahead);
  report_shard_plan(config, plan);
  engine.configure_sharding({.shards = plan.shards,
                             .threads = plan.threads,
                             .lookahead = plan.lookahead,
                             .windowed = plan.windowed});
  return plan;
}

}  // namespace

ShardPlan Cluster::resolve_sharding(const ClusterConfig& config,
                                    sim::Duration lookahead) {
  ShardPlan plan;
  plan.threads =
      config.engine_threads > 0 ? config.engine_threads : default_engine_threads();
  plan.lookahead = lookahead;
  if (lookahead > 0) {
    // Windowed even at one shard: every layout then shares the same
    // window-close resolution semantics, which is what makes shards=1 and
    // shards=N trajectories byte-identical (DESIGN.md §15).
    plan.windowed = true;
    plan.shards = std::min(plan.threads, config.nodes);
  }
  return plan;
}

std::vector<int> Cluster::shard_map(int nodes, int shards) {
  if (nodes <= 0) return {};
  if (shards < 1) shards = 1;
  std::vector<int> map(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) {
    map[static_cast<std::size_t>(r)] = static_cast<int>(
        static_cast<std::int64_t>(r) * shards / nodes);
  }
  return map;
}

RunResult Cluster::run_dv(const DvProgram& program) {
  const check::ScopedBackend check_backend("dv");
  TraceCapture capture(tracer_);
  tracer_.ensure_nodes(config_.nodes);
  sim::Engine engine;
  vic::DvFabric fabric(engine, config_.nodes, config_.dv);
  const ShardPlan plan = apply_sharding(engine, config_, fabric.min_remote_latency());
  if (plan.windowed) fabric.configure_partition(plan.shards);
  const std::vector<int> node_shard = shard_map(config_.nodes, plan.shards);
  CostModel cost(config_.cost);
  std::deque<dvapi::DvContext> dv_ctxs;
  std::deque<NodeCtx> node_ctxs;
  for (int r = 0; r < config_.nodes; ++r) {
    dv_ctxs.emplace_back(engine, fabric, r, capture.tracer_or_null(), config_.dvapi);
    node_ctxs.emplace_back(engine, cost, tracer_, r);
  }
  for (int r = 0; r < config_.nodes; ++r) {
    // The explicit shard pins every rank's coroutine (and everything it
    // schedules locally) to its partition; the default would put all roots
    // on shard 0.
    engine.spawn(program(dv_ctxs[static_cast<std::size_t>(r)],
                         node_ctxs[static_cast<std::size_t>(r)]),
                 /*start=*/-1, node_shard[static_cast<std::size_t>(r)]);
  }
  return collect(engine, node_ctxs);
}

RunResult Cluster::run_mpi(const MpiProgram& program) {
  // The check context carries the real backend id ("mpi" vs "mpi-torus"),
  // so invariant-failure JSON distinguishes the fabrics.
  const check::ScopedBackend check_backend(to_string(config_.mpi_fabric));
  TraceCapture capture(tracer_);
  tracer_.ensure_nodes(config_.nodes);
  sim::Engine engine;
  std::unique_ptr<net::Interconnect> fabric;
  switch (config_.mpi_fabric) {
    case MpiFabric::kIb:
      fabric = std::make_unique<ib::Fabric>(config_.nodes, config_.ib);
      break;
    case MpiFabric::kTorus:
      fabric = std::make_unique<torus::Fabric>(config_.nodes, config_.torus);
      break;
  }
  // The lookahead comes from the interconnect's own conservative bound.
  const ShardPlan plan = apply_sharding(engine, config_, fabric->lookahead());
  const std::vector<int> node_shard = shard_map(config_.nodes, plan.shards);
  mpi::MpiWorld world(engine, std::move(fabric), config_.nodes, config_.mpi,
                      capture.tracer_or_null());
  if (plan.windowed) world.configure_partition(node_shard);
  CostModel cost(config_.cost);
  std::deque<NodeCtx> node_ctxs;
  for (int r = 0; r < config_.nodes; ++r) {
    node_ctxs.emplace_back(engine, cost, tracer_, r);
  }
  for (int r = 0; r < config_.nodes; ++r) {
    engine.spawn(program(world.comm(r), node_ctxs[static_cast<std::size_t>(r)]),
                 /*start=*/-1, node_shard[static_cast<std::size_t>(r)]);
  }
  return collect(engine, node_ctxs);
}

}  // namespace dvx::runtime
