#include "runtime/cluster.hpp"

#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>

#include "check/check.hpp"
#include "obs/collector.hpp"
#include "runtime/report.hpp"

namespace dvx::runtime {

namespace {
int g_default_engine_threads = 0;  // 0 = fall back to env / 1
}  // namespace

int default_engine_threads() {
  if (g_default_engine_threads > 0) return g_default_engine_threads;
  if (const char* env = std::getenv("DVX_ENGINE_THREADS")) {
    try {
      const int n = std::stoi(env);
      if (n > 0) return n;
    } catch (const std::exception&) {
      // fall through: a malformed value means "unset"
    }
  }
  return 1;
}

void set_default_engine_threads(int threads) {
  g_default_engine_threads = threads > 0 ? threads : 0;
}

const char* to_string(MpiFabric fabric) noexcept {
  switch (fabric) {
    case MpiFabric::kIb:
      return "mpi";
    case MpiFabric::kTorus:
      return "mpi-torus";
  }
  return "mpi";  // unreachable; keeps -Wreturn-type quiet
}

Cluster::Cluster(ClusterConfig config) : config_(config), tracer_(config.trace) {
  if (config_.nodes <= 0) throw std::invalid_argument("Cluster: nodes must be positive");
  // Invariant violations in any simulated run report uniformly (structured
  // text + one JSON line on stderr) before aborting the run.
  install_check_report_handler();
}

namespace {

RunResult collect(sim::Engine& engine, std::deque<NodeCtx>& ctxs) {
  const sim::Time finished = engine.run();
  if (!engine.all_done()) {
    throw std::logic_error("Cluster: a rank never finished (deadlock?)");
  }
  sim::Time b = ctxs.front().roi_begin_time();
  sim::Time e = ctxs.front().roi_end_time();
  for (const auto& c : ctxs) {
    b = std::min(b, c.roi_begin_time());
    e = std::max(e, c.roi_end_time());
  }
  // The engine sits below dvx_obs in the library stack, so its diagnostics
  // are harvested here rather than self-attached.
  if (obs::Registry* m = obs::metrics()) {
    m->counter("sim.engine.events")->add(engine.events_processed());
    m->gauge("sim.engine.queue_depth")
        ->sample(static_cast<double>(engine.max_queue_depth()));
    // The conservative window bound, for sanity-checking sharded runs. The
    // thread count is deliberately NOT exported: metrics snapshots must be
    // byte-identical at any --engine-threads value.
    m->gauge("sim.engine.lookahead_ps")
        ->sample(static_cast<double>(engine.sharding().lookahead));
  }
  return RunResult{finished, e > b ? e - b : 0};
}

/// Turns the tracer on for the duration of one run when the ambient obs
/// collector asked for a trace, and hands the collector only the records
/// this run appended (a point may run the cluster several times).
class TraceCapture {
 public:
  explicit TraceCapture(sim::Tracer& tracer)
      : tracer_(tracer),
        was_enabled_(tracer.enabled()),
        first_state_(tracer.states().size()),
        first_message_(tracer.messages().size()) {
    if (obs::trace_wanted()) tracer_.set_enabled(true);
  }
  ~TraceCapture() {
    obs::absorb_trace(tracer_, first_state_, first_message_);
    tracer_.set_enabled(was_enabled_);
  }
  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  sim::Tracer* tracer_or_null() noexcept {
    return tracer_.enabled() ? &tracer_ : nullptr;
  }

 private:
  sim::Tracer& tracer_;
  bool was_enabled_;
  std::size_t first_state_;
  std::size_t first_message_;
};

// Shard count stays 1 for cluster runs: the fabric models are shared
// mutable state, and partitioning them per shard is the staged follow-up
// (DESIGN.md §12; `dvx_analyze` enumerates the blockers). The window
// parameters are still configured — threads (explicit config, else
// DVX_ENGINE_THREADS / set_default_engine_threads) and the physical
// lookahead bound — so the sharded path lights up for any workload that
// opts into shards > 1, and so the bound is recorded in metrics for
// every run.
void configure_single_shard(sim::Engine& engine, const ClusterConfig& config,
                            sim::Duration lookahead) {
  const int threads =
      config.engine_threads > 0 ? config.engine_threads : default_engine_threads();
  engine.configure_sharding(
      {.shards = 1, .threads = threads, .lookahead = lookahead});
}

}  // namespace

RunResult Cluster::run_dv(const DvProgram& program) {
  const check::ScopedBackend check_backend("dv");
  TraceCapture capture(tracer_);
  sim::Engine engine;
  vic::DvFabric fabric(engine, config_.nodes, config_.dv);
  configure_single_shard(engine, config_, fabric.min_remote_latency());
  CostModel cost(config_.cost);
  std::deque<dvapi::DvContext> dv_ctxs;
  std::deque<NodeCtx> node_ctxs;
  for (int r = 0; r < config_.nodes; ++r) {
    dv_ctxs.emplace_back(engine, fabric, r, capture.tracer_or_null(), config_.dvapi);
    node_ctxs.emplace_back(engine, cost, tracer_, r);
  }
  for (int r = 0; r < config_.nodes; ++r) {
    engine.spawn(program(dv_ctxs[static_cast<std::size_t>(r)],
                         node_ctxs[static_cast<std::size_t>(r)]));
  }
  return collect(engine, node_ctxs);
}

RunResult Cluster::run_mpi(const MpiProgram& program) {
  // The check context carries the real backend id ("mpi" vs "mpi-torus"),
  // so invariant-failure JSON distinguishes the fabrics.
  const check::ScopedBackend check_backend(to_string(config_.mpi_fabric));
  TraceCapture capture(tracer_);
  sim::Engine engine;
  std::unique_ptr<net::Interconnect> fabric;
  switch (config_.mpi_fabric) {
    case MpiFabric::kIb:
      fabric = std::make_unique<ib::Fabric>(config_.nodes, config_.ib);
      break;
    case MpiFabric::kTorus:
      fabric = std::make_unique<torus::Fabric>(config_.nodes, config_.torus);
      break;
  }
  // The lookahead comes from the interconnect's own conservative bound.
  configure_single_shard(engine, config_, fabric->lookahead());
  mpi::MpiWorld world(engine, std::move(fabric), config_.nodes, config_.mpi,
                      capture.tracer_or_null());
  CostModel cost(config_.cost);
  std::deque<NodeCtx> node_ctxs;
  for (int r = 0; r < config_.nodes; ++r) {
    node_ctxs.emplace_back(engine, cost, tracer_, r);
  }
  for (int r = 0; r < config_.nodes; ++r) {
    engine.spawn(program(world.comm(r), node_ctxs[static_cast<std::size_t>(r)]));
  }
  return collect(engine, node_ctxs);
}

}  // namespace dvx::runtime
