#include "runtime/cluster.hpp"

#include <deque>
#include <stdexcept>

#include "check/check.hpp"
#include "runtime/report.hpp"

namespace dvx::runtime {

Cluster::Cluster(ClusterConfig config) : config_(config), tracer_(config.trace) {
  if (config_.nodes <= 0) throw std::invalid_argument("Cluster: nodes must be positive");
  // Invariant violations in any simulated run report uniformly (structured
  // text + one JSON line on stderr) before aborting the run.
  install_check_report_handler();
}

namespace {

RunResult collect(sim::Engine& engine, std::deque<NodeCtx>& ctxs) {
  const sim::Time finished = engine.run();
  if (!engine.all_done()) {
    throw std::logic_error("Cluster: a rank never finished (deadlock?)");
  }
  sim::Time b = ctxs.front().roi_begin_time();
  sim::Time e = ctxs.front().roi_end_time();
  for (const auto& c : ctxs) {
    b = std::min(b, c.roi_begin_time());
    e = std::max(e, c.roi_end_time());
  }
  return RunResult{finished, e > b ? e - b : 0};
}

}  // namespace

RunResult Cluster::run_dv(const DvProgram& program) {
  const check::ScopedBackend check_backend("dv");
  sim::Engine engine;
  vic::DvFabric fabric(engine, config_.nodes, config_.dv);
  CostModel cost(config_.cost);
  std::deque<dvapi::DvContext> dv_ctxs;
  std::deque<NodeCtx> node_ctxs;
  for (int r = 0; r < config_.nodes; ++r) {
    dv_ctxs.emplace_back(engine, fabric, r, config_.trace ? &tracer_ : nullptr,
                         config_.dvapi);
    node_ctxs.emplace_back(engine, cost, tracer_, r);
  }
  for (int r = 0; r < config_.nodes; ++r) {
    engine.spawn(program(dv_ctxs[static_cast<std::size_t>(r)],
                         node_ctxs[static_cast<std::size_t>(r)]));
  }
  return collect(engine, node_ctxs);
}

RunResult Cluster::run_mpi(const MpiProgram& program) {
  const check::ScopedBackend check_backend("mpi");
  sim::Engine engine;
  ib::Fabric fabric(config_.nodes, config_.ib);
  mpi::MpiWorld world(engine, fabric, config_.nodes, config_.mpi,
                      config_.trace ? &tracer_ : nullptr);
  CostModel cost(config_.cost);
  std::deque<NodeCtx> node_ctxs;
  for (int r = 0; r < config_.nodes; ++r) {
    node_ctxs.emplace_back(engine, cost, tracer_, r);
  }
  for (int r = 0; r < config_.nodes; ++r) {
    engine.spawn(program(world.comm(r), node_ctxs[static_cast<std::size_t>(r)]));
  }
  return collect(engine, node_ctxs);
}

}  // namespace dvx::runtime
