#pragma once
// Per-rank execution context: compute-time charging, tracing, and
// region-of-interest timestamps.

#include "runtime/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace dvx::runtime {

class NodeCtx {
 public:
  NodeCtx(sim::Engine& engine, const CostModel& cost, sim::Tracer& tracer, int rank)
      : engine_(engine), cost_(cost), tracer_(tracer), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  sim::Engine& engine() noexcept { return engine_; }
  const CostModel& cost() const noexcept { return cost_; }
  sim::Tracer& tracer() noexcept { return tracer_; }
  sim::Time now() const noexcept { return engine_.now(); }

  /// Charges virtual compute time for `n` floating-point operations.
  sim::Coro<void> compute_flops(double n) { return charge(cost_.flops(n)); }

  /// Charges virtual compute time for streaming `bytes` through memory.
  sim::Coro<void> compute_stream(double bytes) {
    return charge(cost_.stream_bytes(bytes));
  }

  /// Charges virtual compute time for `n` irregular (random) accesses.
  sim::Coro<void> compute_random(double n) { return charge(cost_.random_accesses(n)); }

  /// Charges an explicit span of compute time.
  sim::Coro<void> charge(sim::Duration d) {
    const sim::Time t0 = engine_.now();
    co_await engine_.delay(d);
    tracer_.record_state(rank_, sim::NodeState::kCompute, t0, engine_.now());
  }

  /// Region-of-interest markers (what benches time, excluding setup).
  void roi_begin() noexcept { roi_begin_ = engine_.now(); }
  void roi_end() noexcept { roi_end_ = engine_.now(); }
  sim::Time roi_begin_time() const noexcept { return roi_begin_; }
  sim::Time roi_end_time() const noexcept { return roi_end_; }

 private:
  sim::Engine& engine_;
  const CostModel& cost_;
  sim::Tracer& tracer_;
  int rank_;
  sim::Time roi_begin_ = 0;
  sim::Time roi_end_ = 0;
};

}  // namespace dvx::runtime
