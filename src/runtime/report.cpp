#include "runtime/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dvx::runtime {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

Table& Table::row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  os << "\n== " << title_ << " ==\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << "\n";
  };
  line(columns_);
  std::vector<std::string> rule;
  rule.reserve(columns_.size());
  for (auto w : width) rule.push_back(std::string(w, '-'));
  line(rule);
  for (const auto& r : rows_) line(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string fmt_gbs(double bytes_per_sec) { return fmt(bytes_per_sec / 1e9, 3) + " GB/s"; }

std::string fmt_us(double us) { return fmt(us, 2) + " us"; }

void figure_banner(std::ostream& os, const std::string& figure,
                   const std::string& paper_summary) {
  os << "\n";
  os << "############################################################\n";
  os << "# " << figure << "\n";
  os << "# paper: " << paper_summary << "\n";
  os << "############################################################\n";
}

}  // namespace dvx::runtime
