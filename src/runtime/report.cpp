#include "runtime/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dvx::runtime {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

Table& Table::row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  os << "\n== " << title_ << " ==\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << "\n";
  };
  line(columns_);
  std::vector<std::string> rule;
  rule.reserve(columns_.size());
  for (auto w : width) rule.push_back(std::string(w, '-'));
  line(rule);
  for (const auto& r : rows_) line(r);
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char ch : cell) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string fmt_gbs(double bytes_per_sec) { return fmt(bytes_per_sec / 1e9, 3) + " GB/s"; }

std::string fmt_us(double us) { return fmt(us, 2) + " us"; }

void figure_banner(std::ostream& os, const std::string& figure,
                   const std::string& paper_summary) {
  os << "\n";
  os << "############################################################\n";
  os << "# " << figure << "\n";
  os << "# paper: " << paper_summary << "\n";
  os << "############################################################\n";
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

void json_escape(std::ostream& os, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(ch)) << std::dec
             << std::setfill(' ');
        } else {
          os << ch;
        }
    }
  }
}

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(v_)) v_ = Object{};
  if (!is_object()) throw std::logic_error("Json::operator[]: not an object");
  auto& obj = std::get<Object>(v_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(key, Json());
  return obj.back().second;
}

void Json::push_back(Json element) {
  if (std::holds_alternative<std::nullptr_t>(v_)) v_ = Array{};
  if (!is_array()) throw std::logic_error("Json::push_back: not an array");
  std::get<Array>(v_).push_back(std::move(element));
}

namespace {

void dump_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no NaN/Inf
    return;
  }
  // Integers up to 2^53 print exactly without an exponent or trailing digits.
  if (d == std::floor(d) && std::abs(d) < 9.0e15) {
    os << static_cast<std::int64_t>(d);
    return;
  }
  std::ostringstream tmp;
  tmp << std::setprecision(std::numeric_limits<double>::max_digits10) << d;
  os << tmp.str();
}

}  // namespace

void Json::dump(std::ostream& os, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::nullptr_t>) {
          os << "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, double>) {
          dump_number(os, v);
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          os << v;
        } else if constexpr (std::is_same_v<T, std::string>) {
          os << '"';
          json_escape(os, v);
          os << '"';
        } else if constexpr (std::is_same_v<T, Array>) {
          if (v.empty()) {
            os << "[]";
            return;
          }
          os << '[' << nl;
          for (std::size_t i = 0; i < v.size(); ++i) {
            os << pad;
            v[i].dump(os, indent, depth + 1);
            if (i + 1 < v.size()) os << (indent > 0 ? "," : ", ");
            os << nl;
          }
          os << close_pad << ']';
        } else if constexpr (std::is_same_v<T, Object>) {
          if (v.empty()) {
            os << "{}";
            return;
          }
          os << '{' << nl;
          for (std::size_t i = 0; i < v.size(); ++i) {
            os << pad << '"';
            json_escape(os, v[i].first);
            os << "\": ";
            v[i].second.dump(os, indent, depth + 1);
            if (i + 1 < v.size()) os << (indent > 0 ? "," : ", ");
            os << nl;
          }
          os << close_pad << '}';
        }
      },
      v_);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

// ---------------------------------------------------------------------------
// Invariant-failure reporting (dvx::check routed through the JSON layer)
// ---------------------------------------------------------------------------

Json check_failure_json(const check::Failure& failure) {
  Json j = Json::object();
  j["schema"] = "dvx-check/v1";
  j["expression"] = failure.expression;
  j["file"] = failure.file;
  j["line"] = failure.line;
  if (!failure.message.empty()) j["detail"] = failure.message;
  if (failure.sim_time_ps >= 0) j["sim_time_ps"] = failure.sim_time_ps;
  if (failure.node >= 0) j["node"] = failure.node;
  if (!failure.backend.empty()) j["backend"] = failure.backend;
  return j;
}

namespace {

void check_report_handler(const check::Failure& failure) {
  // One human-readable block plus one machine-readable line; check::fail()
  // throws CheckError after this handler returns, aborting the run.
  std::cerr << check::format(failure) << check_failure_json(failure).dump()
            << "\n"
            << std::flush;
}

}  // namespace

void install_check_report_handler() {
  check::set_handler(&check_report_handler);
}

// ---------------------------------------------------------------------------
// Structured results
// ---------------------------------------------------------------------------

namespace {

Json map_to_json(const std::map<std::string, double>& m) {
  Json out = Json::object();
  for (const auto& [k, v] : m) out[k] = v;
  return out;
}

}  // namespace

Json BenchRecord::to_json() const {
  Json j = Json::object();
  j["figure"] = figure;
  j["workload"] = workload;
  j["backend"] = backend;
  if (!variant.empty()) j["variant"] = variant;
  j["nodes"] = nodes;
  j["config"] = map_to_json(config);
  j["metrics"] = map_to_json(metrics);
  return j;
}

Json AnchorCheck::to_json() const {
  Json j = Json::object();
  j["figure"] = figure;
  j["name"] = name;
  j["observed"] = observed;
  j["expected"] = expected;
  j["pass"] = pass;
  if (!detail.empty()) j["detail"] = detail;
  return j;
}

void ResultSink::add(BenchRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

void ResultSink::add_anchor(AnchorCheck anchor) {
  const std::lock_guard<std::mutex> lock(mu_);
  anchors_.push_back(std::move(anchor));
}

std::vector<std::string> ResultSink::figures() const {
  std::vector<std::string> out;
  for (const auto& r : records_) {
    if (std::find(out.begin(), out.end(), r.figure) == out.end()) out.push_back(r.figure);
  }
  for (const auto& a : anchors_) {
    if (std::find(out.begin(), out.end(), a.figure) == out.end()) out.push_back(a.figure);
  }
  return out;
}

Json ResultSink::document(const std::vector<const BenchRecord*>& records,
                          const std::vector<const AnchorCheck*>& anchors) const {
  Json doc = Json::object();
  doc["schema"] = "dvx-bench/v1";
  doc["driver"] = "dvx_bench";
  doc["fast"] = fast;
  if (seed != 0) doc["seed"] = seed;
  Json recs = Json::array();
  for (const auto* r : records) recs.push_back(r->to_json());
  doc["records"] = std::move(recs);
  Json ancs = Json::array();
  for (const auto* a : anchors) ancs.push_back(a->to_json());
  doc["anchors"] = std::move(ancs);
  return doc;
}

Json ResultSink::to_json() const {
  std::vector<const BenchRecord*> rs;
  for (const auto& r : records_) rs.push_back(&r);
  std::vector<const AnchorCheck*> as;
  for (const auto& a : anchors_) as.push_back(&a);
  return document(rs, as);
}

Json ResultSink::figure_json(const std::string& figure) const {
  std::vector<const BenchRecord*> rs;
  for (const auto& r : records_) {
    if (r.figure == figure) rs.push_back(&r);
  }
  std::vector<const AnchorCheck*> as;
  for (const auto& a : anchors_) {
    if (a.figure == figure) as.push_back(&a);
  }
  return document(rs, as);
}

bool ResultSink::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  to_json().dump(os, 2);
  os << '\n';
  return static_cast<bool>(os);
}

bool ResultSink::write_figure_file(const std::string& figure,
                                   const std::string& dir) const {
  std::ofstream os(dir + "/BENCH_" + figure + ".json");
  if (!os) return false;
  figure_json(figure).dump(os, 2);
  os << '\n';
  return static_cast<bool>(os);
}

}  // namespace dvx::runtime
