#pragma once
// Reporters for the benchmark harness.
//
// Two output layers share the same numbers:
//  * Table — the fixed-width rows/series the corresponding paper figure
//    plots, printed for humans (plus a CSV dump for plotting scripts).
//  * ResultSink — structured records serialized as JSON (`BENCH_<figure>.json`
//    per figure plus an optional combined document), the machine-readable
//    trajectory the growth loop and CI consume. The schema is documented in
//    DESIGN.md §6.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "check/check.hpp"

namespace dvx::runtime {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  Table& row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// Comma-separated dump (for plotting scripts). Cells containing commas,
  /// quotes, or newlines are quoted RFC-4180 style (`"` doubled to `""`).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes one CSV cell if needed (comma, quote, CR or LF present).
std::string csv_escape(const std::string& cell);

/// Formats a double with `prec` digits after the point.
std::string fmt(double v, int prec = 2);
/// Formats bytes/s as "X.XX GB/s".
std::string fmt_gbs(double bytes_per_sec);
/// Formats a virtual duration as microseconds.
std::string fmt_us(double us);

/// Prints the standard figure banner used by all bench binaries.
void figure_banner(std::ostream& os, const std::string& figure,
                   const std::string& paper_summary);

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// Minimal ordered JSON value (no external dependency). Object keys keep
/// insertion order so emitted documents are deterministic and diffable.
/// Doubles are emitted with max_digits10 (exact round-trip); non-finite
/// doubles serialize as null, which JSON requires.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : v_(i) {}
  Json(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  /// Object access; inserts a null member on first use. Converts a null
  /// value to an object, throws std::logic_error on other kinds.
  Json& operator[](const std::string& key);
  /// Array append. Converts a null value to an array.
  void push_back(Json element);

  bool is_object() const { return std::holds_alternative<Object>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }

  /// Serializes; indent == 0 means compact one-line output.
  void dump(std::ostream& os, int indent = 0, int depth = 0) const;
  std::string dump(int indent = 0) const;

 private:
  explicit Json(Array a) : v_(std::move(a)) {}
  explicit Json(Object o) : v_(std::move(o)) {}
  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array, Object> v_;
};

/// Writes `s` with JSON string escaping (quotes, backslash, control chars).
void json_escape(std::ostream& os, std::string_view s);

/// Structured JSON form of a failed invariant (schema "dvx-check/v1"):
/// expression, file, line, detail, plus sim_time_ps / node / backend when
/// the failure carries that context.
Json check_failure_json(const check::Failure& failure);

/// Installs a check-failure handler that emits check_failure_json() as one
/// line on stderr before the run aborts (the machine-readable counterpart
/// of the BENCH_*.json documents). Idempotent; Cluster installs it so every
/// simulated run reports invariant violations uniformly.
void install_check_report_handler();

// ---------------------------------------------------------------------------
// Structured results
// ---------------------------------------------------------------------------

/// One measurement point: a (figure, workload, backend, variant, nodes,
/// config) tuple with its metric values. `backend` is "dv", "mpi", or
/// "derived" for cross-backend rows (e.g. DV/IB ratios); `variant`
/// distinguishes sub-series within a backend (send path, barrier flavor,
/// application name) and is empty when the figure has a single series.
struct BenchRecord {
  std::string figure;
  std::string workload;
  std::string backend;
  std::string variant;
  int nodes = 0;
  std::map<std::string, double> config;   ///< resolved parameter values
  std::map<std::string, double> metrics;  ///< metric key -> value
  Json to_json() const;
};

/// A paper-anchor check: did this run reproduce a claim the paper makes?
struct AnchorCheck {
  std::string figure;
  std::string name;       ///< e.g. "dv_dma_fraction_of_peak"
  double observed = 0.0;
  double expected = 0.0;  ///< the paper's number (or bound)
  bool pass = false;
  std::string detail;     ///< how `pass` was decided
  Json to_json() const;
};

/// Accumulates structured results for one driver invocation and writes the
/// machine-readable JSON documents alongside the legacy tables.
///
/// Appends are mutex-guarded, so concurrently executing measurement points
/// may record into one sink. Canonical (plan-order) documents are still the
/// caller's job: the parallel driver appends from the single reporting
/// thread, in plan order, after all points have executed. The read accessors
/// return references and must not race with concurrent appends.
class ResultSink {
 public:
  ResultSink() = default;
  // Movable for value-style construction (the mutex is not part of the
  // value); a move must not race with concurrent appends on either side.
  ResultSink(ResultSink&& other) noexcept
      : fast(other.fast),
        seed(other.seed),
        records_(std::move(other.records_)),
        anchors_(std::move(other.anchors_)) {}
  ResultSink& operator=(ResultSink&& other) noexcept {
    fast = other.fast;
    seed = other.seed;
    records_ = std::move(other.records_);
    anchors_ = std::move(other.anchors_);
    return *this;
  }

  /// Document-level context, echoed into every emitted file.
  bool fast = false;
  std::uint64_t seed = 0;  ///< 0 = per-workload defaults were used

  void add(BenchRecord record);
  void add_anchor(AnchorCheck anchor);

  const std::vector<BenchRecord>& records() const noexcept { return records_; }
  const std::vector<AnchorCheck>& anchors() const noexcept { return anchors_; }

  /// Figures seen so far, in first-appearance order.
  std::vector<std::string> figures() const;

  /// The full document (all figures).
  Json to_json() const;
  /// The document restricted to one figure's records and anchors.
  Json figure_json(const std::string& figure) const;

  /// Writes the combined document. Returns false on I/O failure.
  bool write_file(const std::string& path) const;
  /// Writes `<dir>/BENCH_<figure>.json`. Returns false on I/O failure.
  bool write_figure_file(const std::string& figure, const std::string& dir = ".") const;

 private:
  Json document(const std::vector<const BenchRecord*>& records,
                const std::vector<const AnchorCheck*>& anchors) const;
  mutable std::mutex mu_;  ///< guards appends to the two vectors below
  std::vector<BenchRecord> records_;
  std::vector<AnchorCheck> anchors_;
};

}  // namespace dvx::runtime
