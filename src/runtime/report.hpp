#pragma once
// Fixed-width table/figure reporters for the benchmark harness: every bench
// binary prints the same rows/series the corresponding paper figure plots.

#include <iosfwd>
#include <string>
#include <vector>

namespace dvx::runtime {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  Table& row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// Comma-separated dump (for plotting scripts).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` digits after the point.
std::string fmt(double v, int prec = 2);
/// Formats bytes/s as "X.XX GB/s".
std::string fmt_gbs(double bytes_per_sec);
/// Formats a virtual duration as microseconds.
std::string fmt_us(double us);

/// Prints the standard figure banner used by all bench binaries.
void figure_banner(std::ostream& os, const std::string& figure,
                   const std::string& paper_summary);

}  // namespace dvx::runtime
