#pragma once
// Complex radix-2 FFT kernels used by the distributed FFT-1D benchmark and
// the pseudo-spectral vorticity solver.
//
// The distributed algorithm (apps/fft1d_*) is the classic six-step 1-D FFT:
// view the N = n1*n2 points as an n1 x n2 matrix, then
//   transpose -> n2 local FFTs of size n1 -> twiddle by W_N^{jk}
//   -> transpose -> n1 local FFTs of size n2 -> transpose
// which turns all inter-node communication into matrix transposes — exactly
// the "butterfly" data redistribution the paper calls out as the hard part.

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace dvx::kernels {

using Complex = std::complex<double>;

/// In-place iterative radix-2 FFT. `data.size()` must be a power of two.
/// `inverse` applies the conjugate transform and the 1/N scaling.
void fft(std::span<Complex> data, bool inverse = false);

/// Reference O(N^2) DFT for validation.
std::vector<Complex> naive_dft(std::span<const Complex> data, bool inverse = false);

/// Nominal FLOP count credited for an N-point FFT (HPCC convention).
double fft_flops(std::int64_t n);

/// Twiddle factor W_N^{jk} = exp(-2*pi*i*j*k/N) (conjugated when inverse).
Complex twiddle(std::int64_t j, std::int64_t k, std::int64_t n, bool inverse = false);

/// Out-of-place transpose of a rows x cols row-major matrix.
std::vector<Complex> transpose(std::span<const Complex> m, std::int64_t rows,
                               std::int64_t cols);

/// Serial six-step FFT (single node), used to validate the distributed one.
std::vector<Complex> six_step_fft(std::span<const Complex> data, std::int64_t n1,
                                  std::int64_t n2, bool inverse = false);

/// Max |a-b| over two complex vectors (validation metric).
double max_abs_diff(std::span<const Complex> a, std::span<const Complex> b);

}  // namespace dvx::kernels
