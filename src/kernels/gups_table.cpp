#include "kernels/gups_table.hpp"

#include <bit>
#include <stdexcept>

#include "sim/rng.hpp"

namespace dvx::kernels {

std::uint64_t gups_start(std::uint64_t stream_id) {
  // Any well-mixed nonzero value works as an LFSR start; derive one from the
  // stream id the same way every rank would.
  const std::uint64_t v = sim::mix64(stream_id + 0x123456789abcdefULL);
  return v == 0 ? 1 : v;
}

GupsTable::GupsTable(std::uint64_t local_size) {
  if (local_size == 0 || !std::has_single_bit(local_size)) {
    throw std::invalid_argument("GupsTable: local size must be a power of two");
  }
  data_.assign(local_size, 0);
}

void GupsTable::init(std::uint64_t global_base) {
  for (std::uint64_t i = 0; i < local_size(); ++i) data_[i] = global_base + i;
}

std::uint64_t GupsTable::errors(std::uint64_t global_base) const {
  std::uint64_t n = 0;
  for (std::uint64_t i = 0; i < local_size(); ++i) {
    if (data_[i] != global_base + i) ++n;
  }
  return n;
}

GupsTarget gups_target(std::uint64_t value, int ranks, std::uint64_t local_size) {
  const std::uint64_t total = static_cast<std::uint64_t>(ranks) * local_size;
  // Power-of-two rank counts (the paper's 4..32) use the HPCC mask; other
  // counts fall back to a modulo reduction.
  const std::uint64_t global =
      std::has_single_bit(total) ? (value & (total - 1)) : (value % total);
  return GupsTarget{static_cast<int>(global / local_size), global % local_size};
}

}  // namespace dvx::kernels
