#include "kernels/fft.hpp"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dvx::kernels {

void fft(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!std::has_single_bit(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv;
  }
}

std::vector<Complex> naive_dft(std::span<const Complex> data, bool inverse) {
  const auto n = static_cast<std::int64_t>(data.size());
  std::vector<Complex> out(data.size());
  const double sign = inverse ? 1.0 : -1.0;
  for (std::int64_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::int64_t j = 0; j < n; ++j) {
      const double ang =
          sign * 2.0 * std::numbers::pi * static_cast<double>(j * k) / static_cast<double>(n);
      acc += data[static_cast<std::size_t>(j)] * Complex(std::cos(ang), std::sin(ang));
    }
    out[static_cast<std::size_t>(k)] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

double fft_flops(std::int64_t n) {
  if (n <= 1) return 0.0;
  const double dn = static_cast<double>(n);
  return 5.0 * dn * std::log2(dn);
}

Complex twiddle(std::int64_t j, std::int64_t k, std::int64_t n, bool inverse) {
  const double sign = inverse ? 1.0 : -1.0;
  // Reduce j*k mod n first: j*k overflows double precision for large N.
  const std::int64_t jk = static_cast<std::int64_t>(
      (static_cast<unsigned __int128>(j) * static_cast<unsigned __int128>(k)) %
      static_cast<unsigned __int128>(n));
  const double ang = sign * 2.0 * std::numbers::pi * static_cast<double>(jk) /
                     static_cast<double>(n);
  return Complex(std::cos(ang), std::sin(ang));
}

std::vector<Complex> transpose(std::span<const Complex> m, std::int64_t rows,
                               std::int64_t cols) {
  if (static_cast<std::int64_t>(m.size()) != rows * cols) {
    throw std::invalid_argument("transpose: size mismatch");
  }
  std::vector<Complex> out(m.size());
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      out[static_cast<std::size_t>(c * rows + r)] = m[static_cast<std::size_t>(r * cols + c)];
    }
  }
  return out;
}

std::vector<Complex> six_step_fft(std::span<const Complex> data, std::int64_t n1,
                                  std::int64_t n2, bool inverse) {
  const std::int64_t n = n1 * n2;
  if (static_cast<std::int64_t>(data.size()) != n) {
    throw std::invalid_argument("six_step_fft: size mismatch");
  }
  // Input viewed as n1 x n2 row-major.
  // Step 1: transpose to n2 x n1.
  auto work = transpose(data, n1, n2);
  // Step 2: n2 local FFTs of length n1 (the rows of the transposed matrix).
  for (std::int64_t r = 0; r < n2; ++r) {
    fft(std::span<Complex>(work.data() + r * n1, static_cast<std::size_t>(n1)), inverse);
  }
  // Step 3: twiddle element (r, c) by W_N^{r*c}.
  for (std::int64_t r = 0; r < n2; ++r) {
    for (std::int64_t c = 0; c < n1; ++c) {
      work[static_cast<std::size_t>(r * n1 + c)] *= twiddle(r, c, n, inverse);
    }
  }
  // Step 4: transpose back to n1 x n2.
  work = transpose(work, n2, n1);
  // Step 5: n1 local FFTs of length n2.
  for (std::int64_t r = 0; r < n1; ++r) {
    fft(std::span<Complex>(work.data() + r * n2, static_cast<std::size_t>(n2)), inverse);
  }
  // Step 6: final transpose for natural output order.
  return transpose(work, n1, n2);
}

double max_abs_diff(std::span<const Complex> a, std::span<const Complex> b) {
  double m = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(a[i] - b[i]));
  if (a.size() != b.size()) return 1e300;
  return m;
}

}  // namespace dvx::kernels
