#pragma once
// Compressed-sparse-row graph storage plus BFS reference and Graph500-style
// validation used by the distributed BFS benchmark.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernels/kronecker.hpp"

namespace dvx::kernels {

class Csr {
 public:
  /// Builds an undirected CSR over `vertices` ids from an edge list.
  /// Self-loops are dropped; multi-edges are kept (Graph500 permits them).
  Csr(std::uint64_t vertices, std::span<const Edge> edges);

  std::uint64_t vertices() const noexcept { return row_ptr_.size() - 1; }
  std::uint64_t edges_stored() const noexcept { return col_.size(); }

  std::span<const std::uint64_t> neighbors(std::uint64_t v) const {
    return std::span<const std::uint64_t>(col_.data() + row_ptr_[v],
                                          col_.data() + row_ptr_[v + 1]);
  }
  std::uint64_t degree(std::uint64_t v) const { return row_ptr_[v + 1] - row_ptr_[v]; }

 private:
  std::vector<std::uint64_t> row_ptr_;
  std::vector<std::uint64_t> col_;
};

inline constexpr std::uint64_t kNoParent = ~0ULL;

/// Serial reference BFS; returns the parent array (parent[root] == root,
/// unreached vertices hold kNoParent).
std::vector<std::uint64_t> bfs_serial(const Csr& g, std::uint64_t root);

/// Number of edges traversed by a BFS (for TEPS): sum of degrees of
/// reached vertices / 2 (Graph500 convention counts each undirected edge
/// once).
double traversed_edges(const Csr& g, std::span<const std::uint64_t> parent);

/// Graph500-style validation of a parent tree:
///  1. parent[root] == root;
///  2. every tree edge (v, parent[v]) exists in the graph;
///  3. levels are consistent: level[v] == level[parent[v]] + 1;
///  4. reachability matches the reference search.
/// Returns an empty string on success, else a description of the failure.
std::string validate_bfs(const Csr& g, std::uint64_t root,
                         std::span<const std::uint64_t> parent);

}  // namespace dvx::kernels
