#include "kernels/kronecker.hpp"

#include <stdexcept>

#include "sim/rng.hpp"

namespace dvx::kernels {

KroneckerGenerator::KroneckerGenerator(KroneckerParams params) : params_(params) {
  if (params.scale < 1 || params.scale > 40) {
    throw std::invalid_argument("Kronecker: scale out of range");
  }
  if (params.edge_factor < 1) {
    throw std::invalid_argument("Kronecker: edge_factor must be positive");
  }
  if (params.a + params.b + params.c >= 1.0) {
    throw std::invalid_argument("Kronecker: a+b+c must be < 1");
  }
}

std::uint64_t KroneckerGenerator::scramble(std::uint64_t v) const {
  // Hash-based permutation within [0, 2^scale): mix, then mask. mix64 is a
  // bijection on 64 bits; masking is not, so fold the high bits back in with
  // a second mix keyed by the seed to keep the map uniform enough for the
  // power-law degree test while remaining deterministic.
  const std::uint64_t mask = vertices() - 1;
  std::uint64_t x = sim::mix64(v ^ (params_.seed * 0x9e3779b97f4a7c15ULL));
  return (x ^ (x >> params_.scale)) & mask;
}

Edge KroneckerGenerator::edge(std::uint64_t index) const {
  sim::Xoshiro256 rng(sim::mix64(index * 0x2545f4914f6cdd1dULL + params_.seed));
  std::uint64_t u = 0, v = 0;
  for (int bit = 0; bit < params_.scale; ++bit) {
    const double r = rng.uniform();
    std::uint64_t ui = 0, vi = 0;
    if (r < params_.a) {
      // quadrant A: (0, 0)
    } else if (r < params_.a + params_.b) {
      vi = 1;  // quadrant B: (0, 1)
    } else if (r < params_.a + params_.b + params_.c) {
      ui = 1;  // quadrant C: (1, 0)
    } else {
      ui = 1;
      vi = 1;  // quadrant D: (1, 1)
    }
    u = (u << 1) | ui;
    v = (v << 1) | vi;
  }
  return Edge{scramble(u), scramble(v)};
}

std::vector<Edge> KroneckerGenerator::slice(std::uint64_t first, std::uint64_t last) const {
  if (last < first || last > edges()) {
    throw std::out_of_range("Kronecker::slice: bad range");
  }
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(last - first));
  for (std::uint64_t i = first; i < last; ++i) out.push_back(edge(i));
  return out;
}

}  // namespace dvx::kernels
