#pragma once
// Graph500-style Kronecker (R-MAT) graph generator (paper §VI, BFS).
//
// Edges are generated with the standard initiator probabilities
// (A, B, C, D) = (0.57, 0.19, 0.19, 0.05); vertex labels are scrambled with
// a hash-based permutation so vertex degree does not correlate with vertex
// id. Generation is deterministic in (seed, edge index), so every rank can
// generate its slice of the edge list independently — exactly how the
// reference implementation parallelizes construction.

#include <cstdint>
#include <vector>

namespace dvx::kernels {

struct Edge {
  std::uint64_t u;
  std::uint64_t v;
};

struct KroneckerParams {
  int scale = 16;           ///< 2^scale vertices
  int edge_factor = 16;     ///< edges = edge_factor * vertices
  std::uint64_t seed = 2;   ///< Graph500 default seeds are 2 and 3
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c
};

class KroneckerGenerator {
 public:
  explicit KroneckerGenerator(KroneckerParams params);

  std::uint64_t vertices() const noexcept { return 1ULL << params_.scale; }
  std::uint64_t edges() const noexcept {
    return static_cast<std::uint64_t>(params_.edge_factor) * vertices();
  }
  const KroneckerParams& params() const noexcept { return params_; }

  /// Generates edge `index` (deterministic, any order, any rank).
  Edge edge(std::uint64_t index) const;

  /// Generates the half-open slice [first, last) of the edge list.
  std::vector<Edge> slice(std::uint64_t first, std::uint64_t last) const;

 private:
  std::uint64_t scramble(std::uint64_t v) const;
  KroneckerParams params_;
};

}  // namespace dvx::kernels
