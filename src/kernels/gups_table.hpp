#pragma once
// GUPS (RandomAccess) building blocks (paper §VI).
//
// The HPCC update stream is the 64-bit LFSR a_{i+1} = (a_i << 1) ^ (a_i < 0
// ? POLY : 0); each value is both the random table index (low bits) and the
// XOR operand. XOR updates are an involution, which gives the kernel its
// self-verification: applying the same update stream twice restores the
// table — the property tests lean on that.

#include <cstdint>
#include <vector>

namespace dvx::kernels {

/// HPCC RandomAccess polynomial.
inline constexpr std::uint64_t kGupsPoly = 0x0000000000000007ULL;

/// One LFSR step of the HPCC update sequence.
constexpr std::uint64_t gups_next(std::uint64_t a) {
  return (a << 1) ^ (static_cast<std::int64_t>(a) < 0 ? kGupsPoly : 0);
}

/// A deterministic, well-mixed starting value for stream `stream_id`.
std::uint64_t gups_start(std::uint64_t stream_id);

/// The distributed update table: each rank owns `local_size` words;
/// global index = owner * local_size + offset.
class GupsTable {
 public:
  explicit GupsTable(std::uint64_t local_size);

  std::uint64_t local_size() const noexcept {
    return static_cast<std::uint64_t>(data_.size());
  }
  /// Initial value convention: table[i] = global index i.
  void init(std::uint64_t global_base);
  void apply(std::uint64_t offset, std::uint64_t xor_value) {
    data_[offset] ^= xor_value;
  }
  std::uint64_t at(std::uint64_t offset) const { return data_[offset]; }

  /// Number of local words that differ from the initial convention —
  /// 0 after a complete double-application of any update stream.
  std::uint64_t errors(std::uint64_t global_base) const;

 private:
  std::vector<std::uint64_t> data_;
};

/// Splits a random value into (owner rank, local offset) for a table of
/// `ranks * local_size` words. local_size must be a power of two.
struct GupsTarget {
  int owner;
  std::uint64_t offset;
};
GupsTarget gups_target(std::uint64_t value, int ranks, std::uint64_t local_size);

}  // namespace dvx::kernels
