#include "kernels/csr.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dvx::kernels {

Csr::Csr(std::uint64_t vertices, std::span<const Edge> edges) {
  row_ptr_.assign(vertices + 1, 0);
  std::size_t kept = 0;
  for (const auto& e : edges) {
    if (e.u == e.v) continue;  // drop self-loops
    if (e.u >= vertices || e.v >= vertices) {
      throw std::out_of_range("Csr: edge endpoint out of range");
    }
    ++row_ptr_[e.u + 1];
    ++row_ptr_[e.v + 1];
    ++kept;
  }
  for (std::uint64_t v = 0; v < vertices; ++v) row_ptr_[v + 1] += row_ptr_[v];
  col_.resize(2 * kept);
  std::vector<std::uint64_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
  for (const auto& e : edges) {
    if (e.u == e.v) continue;
    col_[cursor[e.u]++] = e.v;
    col_[cursor[e.v]++] = e.u;
  }
}

std::vector<std::uint64_t> bfs_serial(const Csr& g, std::uint64_t root) {
  std::vector<std::uint64_t> parent(g.vertices(), kNoParent);
  if (root >= g.vertices()) throw std::out_of_range("bfs_serial: bad root");
  parent[root] = root;
  std::deque<std::uint64_t> frontier{root};
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (std::uint64_t w : g.neighbors(v)) {
      if (parent[w] == kNoParent) {
        parent[w] = v;
        frontier.push_back(w);
      }
    }
  }
  return parent;
}

double traversed_edges(const Csr& g, std::span<const std::uint64_t> parent) {
  std::uint64_t deg_sum = 0;
  for (std::uint64_t v = 0; v < g.vertices(); ++v) {
    if (parent[v] != kNoParent) deg_sum += g.degree(v);
  }
  return static_cast<double>(deg_sum) / 2.0;
}

std::string validate_bfs(const Csr& g, std::uint64_t root,
                         std::span<const std::uint64_t> parent) {
  if (parent.size() != g.vertices()) return "parent array size mismatch";
  if (parent[root] != root) return "parent[root] != root";

  // Compute levels by chasing parents (with cycle guard).
  std::vector<std::int64_t> level(g.vertices(), -1);
  level[root] = 0;
  for (std::uint64_t v = 0; v < g.vertices(); ++v) {
    if (parent[v] == kNoParent || level[v] >= 0) continue;
    std::vector<std::uint64_t> chain;
    std::uint64_t x = v;
    while (level[x] < 0) {
      chain.push_back(x);
      if (parent[x] == kNoParent) return "tree reaches an unvisited vertex";
      if (chain.size() > g.vertices()) return "cycle in parent tree";
      x = parent[x];
    }
    std::int64_t l = level[x];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) level[*it] = ++l;
  }

  const auto reference = bfs_serial(g, root);
  for (std::uint64_t v = 0; v < g.vertices(); ++v) {
    const bool reached = parent[v] != kNoParent;
    const bool ref_reached = reference[v] != kNoParent;
    if (reached != ref_reached) return "reachability mismatch at vertex";
    if (!reached || v == root) continue;
    // Tree edge must exist.
    const auto nbrs = g.neighbors(v);
    if (std::find(nbrs.begin(), nbrs.end(), parent[v]) == nbrs.end()) {
      return "tree edge not present in graph";
    }
    if (level[v] != level[parent[v]] + 1) return "level inconsistency";
  }
  return {};
}

}  // namespace dvx::kernels
