#pragma once
// Structured-grid helpers shared by the heat-equation and SNAP applications:
// 3-D block decomposition, local grids with one-cell halos, face
// packing/unpacking, and the 7-point Jacobi heat step.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace dvx::kernels {

/// Factors `ranks` into a near-cubic (px, py, pz) process grid.
std::array<int, 3> process_grid_3d(int ranks);

/// Splits `n` cells over `parts`; returns the [begin, end) of `index`.
std::pair<std::int64_t, std::int64_t> block_range(std::int64_t n, int parts, int index);

/// Local grid with a one-cell halo on each face. Interior cells are indexed
/// 1..n; halo layers sit at 0 and n+1.
class HaloGrid3 {
 public:
  HaloGrid3(int nx, int ny, int nz);

  int nx() const noexcept { return nx_; }
  int ny() const noexcept { return ny_; }
  int nz() const noexcept { return nz_; }
  std::int64_t interior_cells() const noexcept {
    return static_cast<std::int64_t>(nx_) * ny_ * nz_;
  }

  double& at(int i, int j, int k) { return data_[index(i, j, k)]; }
  double at(int i, int j, int k) const { return data_[index(i, j, k)]; }

  /// Faces: 0/1 = -x/+x, 2/3 = -y/+y, 4/5 = -z/+z.
  std::int64_t face_cells(int face) const;
  std::vector<double> pack_face(int face) const;      ///< interior boundary layer
  void unpack_halo(int face, std::span<const double> values);  ///< into halo layer

  /// Mirrors the interior boundary into the halo (insulated boundary).
  void reflect_boundary(int face);

  std::span<double> raw() { return data_; }
  std::span<const double> raw() const { return data_; }

 private:
  std::size_t index(int i, int j, int k) const {
    return (static_cast<std::size_t>(k) * (ny_ + 2) + j) * (nx_ + 2) + i;
  }
  int nx_, ny_, nz_;
  std::vector<double> data_;
};

/// One explicit 7-point heat step: out = in + alpha * laplacian(in).
/// Returns the max |out-in| (convergence measure). alpha must satisfy the
/// usual stability bound alpha <= 1/6 for the unit-spacing Laplacian.
double heat_step(const HaloGrid3& in, HaloGrid3& out, double alpha);

/// FLOPs charged per interior cell of a heat step.
inline constexpr double kHeatFlopsPerCell = 9.0;

}  // namespace dvx::kernels
