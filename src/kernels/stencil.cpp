#include "kernels/stencil.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dvx::kernels {

std::array<int, 3> process_grid_3d(int ranks) {
  if (ranks <= 0) throw std::invalid_argument("process_grid_3d: ranks must be positive");
  std::array<int, 3> best{ranks, 1, 1};
  double best_score = 1e300;
  for (int px = 1; px <= ranks; ++px) {
    if (ranks % px != 0) continue;
    const int rest = ranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py != 0) continue;
      const int pz = rest / py;
      // Prefer near-cubic: minimize surface of the unit decomposition.
      const double score = 1.0 / px + 1.0 / py + 1.0 / pz;
      if (score < best_score) {
        best_score = score;
        best = {px, py, pz};
      }
    }
  }
  return best;
}

std::pair<std::int64_t, std::int64_t> block_range(std::int64_t n, int parts, int index) {
  if (parts <= 0 || index < 0 || index >= parts) {
    throw std::invalid_argument("block_range: bad partition");
  }
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  const std::int64_t begin = index * base + std::min<std::int64_t>(index, extra);
  const std::int64_t len = base + (index < extra ? 1 : 0);
  return {begin, begin + len};
}

HaloGrid3::HaloGrid3(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  if (nx < 1 || ny < 1 || nz < 1) throw std::invalid_argument("HaloGrid3: bad extents");
  data_.assign(static_cast<std::size_t>(nx + 2) * (ny + 2) * (nz + 2), 0.0);
}

std::int64_t HaloGrid3::face_cells(int face) const {
  switch (face) {
    case 0:
    case 1: return static_cast<std::int64_t>(ny_) * nz_;
    case 2:
    case 3: return static_cast<std::int64_t>(nx_) * nz_;
    case 4:
    case 5: return static_cast<std::int64_t>(nx_) * ny_;
    default: throw std::invalid_argument("HaloGrid3: bad face");
  }
}

namespace {
struct FaceIter {
  int i0, i1, j0, j1, k0, k1;
};
}  // namespace

std::vector<double> HaloGrid3::pack_face(int face) const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(face_cells(face)));
  const FaceIter f = [&]() -> FaceIter {
    switch (face) {
      case 0: return {1, 1, 1, ny_, 1, nz_};
      case 1: return {nx_, nx_, 1, ny_, 1, nz_};
      case 2: return {1, nx_, 1, 1, 1, nz_};
      case 3: return {1, nx_, ny_, ny_, 1, nz_};
      case 4: return {1, nx_, 1, ny_, 1, 1};
      case 5: return {1, nx_, 1, ny_, nz_, nz_};
      default: throw std::invalid_argument("pack_face: bad face");
    }
  }();
  for (int k = f.k0; k <= f.k1; ++k) {
    for (int j = f.j0; j <= f.j1; ++j) {
      for (int i = f.i0; i <= f.i1; ++i) out.push_back(at(i, j, k));
    }
  }
  return out;
}

void HaloGrid3::unpack_halo(int face, std::span<const double> values) {
  if (static_cast<std::int64_t>(values.size()) != face_cells(face)) {
    throw std::invalid_argument("unpack_halo: size mismatch");
  }
  const FaceIter f = [&]() -> FaceIter {
    switch (face) {
      case 0: return {0, 0, 1, ny_, 1, nz_};
      case 1: return {nx_ + 1, nx_ + 1, 1, ny_, 1, nz_};
      case 2: return {1, nx_, 0, 0, 1, nz_};
      case 3: return {1, nx_, ny_ + 1, ny_ + 1, 1, nz_};
      case 4: return {1, nx_, 1, ny_, 0, 0};
      case 5: return {1, nx_, 1, ny_, nz_ + 1, nz_ + 1};
      default: throw std::invalid_argument("unpack_halo: bad face");
    }
  }();
  std::size_t idx = 0;
  for (int k = f.k0; k <= f.k1; ++k) {
    for (int j = f.j0; j <= f.j1; ++j) {
      for (int i = f.i0; i <= f.i1; ++i) at(i, j, k) = values[idx++];
    }
  }
}

void HaloGrid3::reflect_boundary(int face) {
  unpack_halo(face, pack_face(face));
}

double heat_step(const HaloGrid3& in, HaloGrid3& out, double alpha) {
  if (in.nx() != out.nx() || in.ny() != out.ny() || in.nz() != out.nz()) {
    throw std::invalid_argument("heat_step: grid shape mismatch");
  }
  double max_delta = 0.0;
  for (int k = 1; k <= in.nz(); ++k) {
    for (int j = 1; j <= in.ny(); ++j) {
      for (int i = 1; i <= in.nx(); ++i) {
        const double c = in.at(i, j, k);
        const double lap = in.at(i - 1, j, k) + in.at(i + 1, j, k) + in.at(i, j - 1, k) +
                           in.at(i, j + 1, k) + in.at(i, j, k - 1) + in.at(i, j, k + 1) -
                           6.0 * c;
        const double v = c + alpha * lap;
        out.at(i, j, k) = v;
        max_delta = std::max(max_delta, std::abs(v - c));
      }
    }
  }
  return max_delta;
}

}  // namespace dvx::kernels
