file(REMOVE_RECURSE
  "libdvx_vic.a"
)
