# Empty dependencies file for dvx_vic.
# This may be replaced when dependencies are built.
