file(REMOVE_RECURSE
  "CMakeFiles/dvx_vic.dir/vic/dma.cpp.o"
  "CMakeFiles/dvx_vic.dir/vic/dma.cpp.o.d"
  "CMakeFiles/dvx_vic.dir/vic/dv_memory.cpp.o"
  "CMakeFiles/dvx_vic.dir/vic/dv_memory.cpp.o.d"
  "CMakeFiles/dvx_vic.dir/vic/group_counters.cpp.o"
  "CMakeFiles/dvx_vic.dir/vic/group_counters.cpp.o.d"
  "CMakeFiles/dvx_vic.dir/vic/pcie.cpp.o"
  "CMakeFiles/dvx_vic.dir/vic/pcie.cpp.o.d"
  "CMakeFiles/dvx_vic.dir/vic/surprise_fifo.cpp.o"
  "CMakeFiles/dvx_vic.dir/vic/surprise_fifo.cpp.o.d"
  "CMakeFiles/dvx_vic.dir/vic/vic.cpp.o"
  "CMakeFiles/dvx_vic.dir/vic/vic.cpp.o.d"
  "libdvx_vic.a"
  "libdvx_vic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvx_vic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
