
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vic/dma.cpp" "src/CMakeFiles/dvx_vic.dir/vic/dma.cpp.o" "gcc" "src/CMakeFiles/dvx_vic.dir/vic/dma.cpp.o.d"
  "/root/repo/src/vic/dv_memory.cpp" "src/CMakeFiles/dvx_vic.dir/vic/dv_memory.cpp.o" "gcc" "src/CMakeFiles/dvx_vic.dir/vic/dv_memory.cpp.o.d"
  "/root/repo/src/vic/group_counters.cpp" "src/CMakeFiles/dvx_vic.dir/vic/group_counters.cpp.o" "gcc" "src/CMakeFiles/dvx_vic.dir/vic/group_counters.cpp.o.d"
  "/root/repo/src/vic/pcie.cpp" "src/CMakeFiles/dvx_vic.dir/vic/pcie.cpp.o" "gcc" "src/CMakeFiles/dvx_vic.dir/vic/pcie.cpp.o.d"
  "/root/repo/src/vic/surprise_fifo.cpp" "src/CMakeFiles/dvx_vic.dir/vic/surprise_fifo.cpp.o" "gcc" "src/CMakeFiles/dvx_vic.dir/vic/surprise_fifo.cpp.o.d"
  "/root/repo/src/vic/vic.cpp" "src/CMakeFiles/dvx_vic.dir/vic/vic.cpp.o" "gcc" "src/CMakeFiles/dvx_vic.dir/vic/vic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvx_dvnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
