file(REMOVE_RECURSE
  "libdvx_mpi.a"
)
