file(REMOVE_RECURSE
  "CMakeFiles/dvx_mpi.dir/mpi/collectives.cpp.o"
  "CMakeFiles/dvx_mpi.dir/mpi/collectives.cpp.o.d"
  "CMakeFiles/dvx_mpi.dir/mpi/comm.cpp.o"
  "CMakeFiles/dvx_mpi.dir/mpi/comm.cpp.o.d"
  "CMakeFiles/dvx_mpi.dir/mpi/p2p.cpp.o"
  "CMakeFiles/dvx_mpi.dir/mpi/p2p.cpp.o.d"
  "libdvx_mpi.a"
  "libdvx_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvx_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
