# Empty dependencies file for dvx_mpi.
# This may be replaced when dependencies are built.
