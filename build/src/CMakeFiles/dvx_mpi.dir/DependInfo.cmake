
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/dvx_mpi.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/dvx_mpi.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/dvx_mpi.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/dvx_mpi.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/p2p.cpp" "src/CMakeFiles/dvx_mpi.dir/mpi/p2p.cpp.o" "gcc" "src/CMakeFiles/dvx_mpi.dir/mpi/p2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvx_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
