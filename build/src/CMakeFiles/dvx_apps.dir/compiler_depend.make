# Empty compiler generated dependencies file for dvx_apps.
# This may be replaced when dependencies are built.
