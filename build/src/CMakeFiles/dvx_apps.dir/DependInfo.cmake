
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bfs_common.cpp" "src/CMakeFiles/dvx_apps.dir/apps/bfs_common.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/bfs_common.cpp.o.d"
  "/root/repo/src/apps/bfs_dv.cpp" "src/CMakeFiles/dvx_apps.dir/apps/bfs_dv.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/bfs_dv.cpp.o.d"
  "/root/repo/src/apps/bfs_mpi.cpp" "src/CMakeFiles/dvx_apps.dir/apps/bfs_mpi.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/bfs_mpi.cpp.o.d"
  "/root/repo/src/apps/fft1d_dv.cpp" "src/CMakeFiles/dvx_apps.dir/apps/fft1d_dv.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/fft1d_dv.cpp.o.d"
  "/root/repo/src/apps/fft1d_mpi.cpp" "src/CMakeFiles/dvx_apps.dir/apps/fft1d_mpi.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/fft1d_mpi.cpp.o.d"
  "/root/repo/src/apps/gups_dv.cpp" "src/CMakeFiles/dvx_apps.dir/apps/gups_dv.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/gups_dv.cpp.o.d"
  "/root/repo/src/apps/gups_mpi.cpp" "src/CMakeFiles/dvx_apps.dir/apps/gups_mpi.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/gups_mpi.cpp.o.d"
  "/root/repo/src/apps/heat_common.cpp" "src/CMakeFiles/dvx_apps.dir/apps/heat_common.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/heat_common.cpp.o.d"
  "/root/repo/src/apps/heat_dv.cpp" "src/CMakeFiles/dvx_apps.dir/apps/heat_dv.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/heat_dv.cpp.o.d"
  "/root/repo/src/apps/heat_mpi.cpp" "src/CMakeFiles/dvx_apps.dir/apps/heat_mpi.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/heat_mpi.cpp.o.d"
  "/root/repo/src/apps/snap_core.cpp" "src/CMakeFiles/dvx_apps.dir/apps/snap_core.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/snap_core.cpp.o.d"
  "/root/repo/src/apps/snap_dv.cpp" "src/CMakeFiles/dvx_apps.dir/apps/snap_dv.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/snap_dv.cpp.o.d"
  "/root/repo/src/apps/snap_mpi.cpp" "src/CMakeFiles/dvx_apps.dir/apps/snap_mpi.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/snap_mpi.cpp.o.d"
  "/root/repo/src/apps/transpose.cpp" "src/CMakeFiles/dvx_apps.dir/apps/transpose.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/transpose.cpp.o.d"
  "/root/repo/src/apps/vorticity_core.cpp" "src/CMakeFiles/dvx_apps.dir/apps/vorticity_core.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/vorticity_core.cpp.o.d"
  "/root/repo/src/apps/vorticity_dv.cpp" "src/CMakeFiles/dvx_apps.dir/apps/vorticity_dv.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/vorticity_dv.cpp.o.d"
  "/root/repo/src/apps/vorticity_mpi.cpp" "src/CMakeFiles/dvx_apps.dir/apps/vorticity_mpi.cpp.o" "gcc" "src/CMakeFiles/dvx_apps.dir/apps/vorticity_mpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_dvapi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_vic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_dvnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
