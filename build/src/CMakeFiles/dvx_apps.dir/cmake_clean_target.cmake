file(REMOVE_RECURSE
  "libdvx_apps.a"
)
