file(REMOVE_RECURSE
  "libdvx_ib.a"
)
