# Empty dependencies file for dvx_ib.
# This may be replaced when dependencies are built.
