file(REMOVE_RECURSE
  "CMakeFiles/dvx_ib.dir/ib/topology.cpp.o"
  "CMakeFiles/dvx_ib.dir/ib/topology.cpp.o.d"
  "libdvx_ib.a"
  "libdvx_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvx_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
