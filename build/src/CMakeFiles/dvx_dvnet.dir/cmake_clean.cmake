file(REMOVE_RECURSE
  "CMakeFiles/dvx_dvnet.dir/dvnet/cycle_switch.cpp.o"
  "CMakeFiles/dvx_dvnet.dir/dvnet/cycle_switch.cpp.o.d"
  "CMakeFiles/dvx_dvnet.dir/dvnet/fabric_model.cpp.o"
  "CMakeFiles/dvx_dvnet.dir/dvnet/fabric_model.cpp.o.d"
  "CMakeFiles/dvx_dvnet.dir/dvnet/geometry.cpp.o"
  "CMakeFiles/dvx_dvnet.dir/dvnet/geometry.cpp.o.d"
  "libdvx_dvnet.a"
  "libdvx_dvnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvx_dvnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
