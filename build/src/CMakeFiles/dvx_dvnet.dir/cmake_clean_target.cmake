file(REMOVE_RECURSE
  "libdvx_dvnet.a"
)
