# Empty dependencies file for dvx_dvnet.
# This may be replaced when dependencies are built.
