
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvnet/cycle_switch.cpp" "src/CMakeFiles/dvx_dvnet.dir/dvnet/cycle_switch.cpp.o" "gcc" "src/CMakeFiles/dvx_dvnet.dir/dvnet/cycle_switch.cpp.o.d"
  "/root/repo/src/dvnet/fabric_model.cpp" "src/CMakeFiles/dvx_dvnet.dir/dvnet/fabric_model.cpp.o" "gcc" "src/CMakeFiles/dvx_dvnet.dir/dvnet/fabric_model.cpp.o.d"
  "/root/repo/src/dvnet/geometry.cpp" "src/CMakeFiles/dvx_dvnet.dir/dvnet/geometry.cpp.o" "gcc" "src/CMakeFiles/dvx_dvnet.dir/dvnet/geometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
