file(REMOVE_RECURSE
  "CMakeFiles/dvx_runtime.dir/runtime/cluster.cpp.o"
  "CMakeFiles/dvx_runtime.dir/runtime/cluster.cpp.o.d"
  "CMakeFiles/dvx_runtime.dir/runtime/report.cpp.o"
  "CMakeFiles/dvx_runtime.dir/runtime/report.cpp.o.d"
  "libdvx_runtime.a"
  "libdvx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
