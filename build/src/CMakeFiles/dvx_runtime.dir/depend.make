# Empty dependencies file for dvx_runtime.
# This may be replaced when dependencies are built.
