
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cluster.cpp" "src/CMakeFiles/dvx_runtime.dir/runtime/cluster.cpp.o" "gcc" "src/CMakeFiles/dvx_runtime.dir/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/report.cpp" "src/CMakeFiles/dvx_runtime.dir/runtime/report.cpp.o" "gcc" "src/CMakeFiles/dvx_runtime.dir/runtime/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvx_dvapi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_vic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_dvnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
