file(REMOVE_RECURSE
  "libdvx_runtime.a"
)
