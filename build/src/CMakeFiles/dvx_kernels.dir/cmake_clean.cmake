file(REMOVE_RECURSE
  "CMakeFiles/dvx_kernels.dir/kernels/csr.cpp.o"
  "CMakeFiles/dvx_kernels.dir/kernels/csr.cpp.o.d"
  "CMakeFiles/dvx_kernels.dir/kernels/fft.cpp.o"
  "CMakeFiles/dvx_kernels.dir/kernels/fft.cpp.o.d"
  "CMakeFiles/dvx_kernels.dir/kernels/gups_table.cpp.o"
  "CMakeFiles/dvx_kernels.dir/kernels/gups_table.cpp.o.d"
  "CMakeFiles/dvx_kernels.dir/kernels/kronecker.cpp.o"
  "CMakeFiles/dvx_kernels.dir/kernels/kronecker.cpp.o.d"
  "CMakeFiles/dvx_kernels.dir/kernels/stencil.cpp.o"
  "CMakeFiles/dvx_kernels.dir/kernels/stencil.cpp.o.d"
  "libdvx_kernels.a"
  "libdvx_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvx_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
