file(REMOVE_RECURSE
  "libdvx_kernels.a"
)
