
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/csr.cpp" "src/CMakeFiles/dvx_kernels.dir/kernels/csr.cpp.o" "gcc" "src/CMakeFiles/dvx_kernels.dir/kernels/csr.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/CMakeFiles/dvx_kernels.dir/kernels/fft.cpp.o" "gcc" "src/CMakeFiles/dvx_kernels.dir/kernels/fft.cpp.o.d"
  "/root/repo/src/kernels/gups_table.cpp" "src/CMakeFiles/dvx_kernels.dir/kernels/gups_table.cpp.o" "gcc" "src/CMakeFiles/dvx_kernels.dir/kernels/gups_table.cpp.o.d"
  "/root/repo/src/kernels/kronecker.cpp" "src/CMakeFiles/dvx_kernels.dir/kernels/kronecker.cpp.o" "gcc" "src/CMakeFiles/dvx_kernels.dir/kernels/kronecker.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "src/CMakeFiles/dvx_kernels.dir/kernels/stencil.cpp.o" "gcc" "src/CMakeFiles/dvx_kernels.dir/kernels/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
