# Empty compiler generated dependencies file for dvx_kernels.
# This may be replaced when dependencies are built.
