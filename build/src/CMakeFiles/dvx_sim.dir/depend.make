# Empty dependencies file for dvx_sim.
# This may be replaced when dependencies are built.
