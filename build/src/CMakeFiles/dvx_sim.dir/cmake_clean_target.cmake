file(REMOVE_RECURSE
  "libdvx_sim.a"
)
