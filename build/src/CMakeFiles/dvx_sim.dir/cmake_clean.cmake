file(REMOVE_RECURSE
  "CMakeFiles/dvx_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/dvx_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/dvx_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/dvx_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/dvx_sim.dir/sim/sync.cpp.o"
  "CMakeFiles/dvx_sim.dir/sim/sync.cpp.o.d"
  "CMakeFiles/dvx_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/dvx_sim.dir/sim/trace.cpp.o.d"
  "libdvx_sim.a"
  "libdvx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
