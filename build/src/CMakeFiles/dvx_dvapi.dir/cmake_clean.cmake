file(REMOVE_RECURSE
  "CMakeFiles/dvx_dvapi.dir/dvapi/barrier.cpp.o"
  "CMakeFiles/dvx_dvapi.dir/dvapi/barrier.cpp.o.d"
  "CMakeFiles/dvx_dvapi.dir/dvapi/collectives.cpp.o"
  "CMakeFiles/dvx_dvapi.dir/dvapi/collectives.cpp.o.d"
  "CMakeFiles/dvx_dvapi.dir/dvapi/context.cpp.o"
  "CMakeFiles/dvx_dvapi.dir/dvapi/context.cpp.o.d"
  "CMakeFiles/dvx_dvapi.dir/dvapi/send.cpp.o"
  "CMakeFiles/dvx_dvapi.dir/dvapi/send.cpp.o.d"
  "libdvx_dvapi.a"
  "libdvx_dvapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvx_dvapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
