
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvapi/barrier.cpp" "src/CMakeFiles/dvx_dvapi.dir/dvapi/barrier.cpp.o" "gcc" "src/CMakeFiles/dvx_dvapi.dir/dvapi/barrier.cpp.o.d"
  "/root/repo/src/dvapi/collectives.cpp" "src/CMakeFiles/dvx_dvapi.dir/dvapi/collectives.cpp.o" "gcc" "src/CMakeFiles/dvx_dvapi.dir/dvapi/collectives.cpp.o.d"
  "/root/repo/src/dvapi/context.cpp" "src/CMakeFiles/dvx_dvapi.dir/dvapi/context.cpp.o" "gcc" "src/CMakeFiles/dvx_dvapi.dir/dvapi/context.cpp.o.d"
  "/root/repo/src/dvapi/send.cpp" "src/CMakeFiles/dvx_dvapi.dir/dvapi/send.cpp.o" "gcc" "src/CMakeFiles/dvx_dvapi.dir/dvapi/send.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvx_vic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_dvnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
