# Empty dependencies file for dvx_dvapi.
# This may be replaced when dependencies are built.
