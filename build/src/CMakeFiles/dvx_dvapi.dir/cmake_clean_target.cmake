file(REMOVE_RECURSE
  "libdvx_dvapi.a"
)
