file(REMOVE_RECURSE
  "CMakeFiles/heat3d.dir/heat3d.cpp.o"
  "CMakeFiles/heat3d.dir/heat3d.cpp.o.d"
  "heat3d"
  "heat3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
