# Empty dependencies file for heat3d.
# This may be replaced when dependencies are built.
