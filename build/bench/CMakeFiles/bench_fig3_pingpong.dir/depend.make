# Empty dependencies file for bench_fig3_pingpong.
# This may be replaced when dependencies are built.
