file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pingpong.dir/bench_fig3_pingpong.cpp.o"
  "CMakeFiles/bench_fig3_pingpong.dir/bench_fig3_pingpong.cpp.o.d"
  "bench_fig3_pingpong"
  "bench_fig3_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
