# Empty dependencies file for bench_fig7_fft.
# This may be replaced when dependencies are built.
