file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_gups.dir/bench_fig6_gups.cpp.o"
  "CMakeFiles/bench_fig6_gups.dir/bench_fig6_gups.cpp.o.d"
  "bench_fig6_gups"
  "bench_fig6_gups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_gups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
