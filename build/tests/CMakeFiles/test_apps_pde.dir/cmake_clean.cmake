file(REMOVE_RECURSE
  "CMakeFiles/test_apps_pde.dir/test_apps_pde.cpp.o"
  "CMakeFiles/test_apps_pde.dir/test_apps_pde.cpp.o.d"
  "test_apps_pde"
  "test_apps_pde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_pde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
