# Empty compiler generated dependencies file for test_apps_pde.
# This may be replaced when dependencies are built.
