# Empty compiler generated dependencies file for test_dvnet.
# This may be replaced when dependencies are built.
