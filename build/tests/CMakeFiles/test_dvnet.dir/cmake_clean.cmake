file(REMOVE_RECURSE
  "CMakeFiles/test_dvnet.dir/test_dvnet.cpp.o"
  "CMakeFiles/test_dvnet.dir/test_dvnet.cpp.o.d"
  "test_dvnet"
  "test_dvnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dvnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
