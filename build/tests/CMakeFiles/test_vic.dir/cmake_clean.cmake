file(REMOVE_RECURSE
  "CMakeFiles/test_vic.dir/test_vic.cpp.o"
  "CMakeFiles/test_vic.dir/test_vic.cpp.o.d"
  "test_vic"
  "test_vic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
