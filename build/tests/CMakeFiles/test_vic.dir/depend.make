# Empty dependencies file for test_vic.
# This may be replaced when dependencies are built.
