# Empty compiler generated dependencies file for test_dvapi.
# This may be replaced when dependencies are built.
