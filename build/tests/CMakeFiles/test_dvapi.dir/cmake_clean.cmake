file(REMOVE_RECURSE
  "CMakeFiles/test_dvapi.dir/test_dvapi.cpp.o"
  "CMakeFiles/test_dvapi.dir/test_dvapi.cpp.o.d"
  "test_dvapi"
  "test_dvapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dvapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
