file(REMOVE_RECURSE
  "CMakeFiles/test_apps_kernels.dir/test_apps_kernels.cpp.o"
  "CMakeFiles/test_apps_kernels.dir/test_apps_kernels.cpp.o.d"
  "test_apps_kernels"
  "test_apps_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
