# Empty dependencies file for test_apps_kernels.
# This may be replaced when dependencies are built.
