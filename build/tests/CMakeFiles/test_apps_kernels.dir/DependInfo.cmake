
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps_kernels.cpp" "tests/CMakeFiles/test_apps_kernels.dir/test_apps_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_apps_kernels.dir/test_apps_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvx_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_dvapi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_vic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_dvnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
