# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dvnet "/root/repo/build/tests/test_dvnet")
set_tests_properties(test_dvnet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vic "/root/repo/build/tests/test_vic")
set_tests_properties(test_vic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dvapi "/root/repo/build/tests/test_dvapi")
set_tests_properties(test_dvapi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mpi "/root/repo/build/tests/test_mpi")
set_tests_properties(test_mpi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_kernels "/root/repo/build/tests/test_kernels")
set_tests_properties(test_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps_kernels "/root/repo/build/tests/test_apps_kernels")
set_tests_properties(test_apps_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps_pde "/root/repo/build/tests/test_apps_pde")
set_tests_properties(test_apps_pde PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;dvx_test;/root/repo/tests/CMakeLists.txt;0;")
